package isa

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements a textual assembly format for the ISA, so kernels
// can be written, inspected and versioned as plain files rather than Go
// code. EmitAsm and Assemble round-trip exactly.
//
// Format:
//
//	; comments run to end of line (// also works)
//	.kernel NAME        kernel name ([A-Za-z0-9._-]+)
//	.regs N             minimum register allocation (optional)
//	.warps N            launch directive: warps per CTA (optional)
//	.shmem N            launch directive: shared-memory bytes per CTA
//	.grid N             launch directive: default grid size in CTAs
//	label:              label at the next instruction
//	  MOV R0, #5        immediate forms use #
//	  IADD R3, R1, R2
//	  LDG R4, [R0] pattern=strided stride=4 region=1 footprint=8388608
//	  STG [R0], R4 region=15
//	  @R2 BRA label trip=16        predicated branch with loop trip count
//	  @R2 BRA label diverge        forward divergent branch
//	  BAR
//	  EXIT
//
// Launch directives describe the launch geometry of a user-supplied
// program; they are not part of the Program itself (EmitAsm does not
// render them) and surface through AssembleLaunch for the workload
// ingestion layer. The grammar is hardened for untrusted input: every
// parse failure is an *AsmError carrying the 1-based line (and column,
// when the offending token can be located), attribute values are
// bounds-checked, and no input can panic the assembler (the fuzz target
// FuzzAssemble pins this).

// MaxSourceBytes bounds the assembly source Assemble accepts, so untrusted
// network input cannot drive unbounded allocation. 1 MiB of source is far
// beyond any realistic kernel (the largest Table II benchmark emits < 1 KiB).
const MaxSourceBytes = 1 << 20

// AsmError is the structured error every assembly failure resolves to.
// Line and Col are 1-based; zero means "unknown" (e.g. whole-program
// validation failures that are not tied to a single source line).
type AsmError struct {
	Line int
	Col  int
	Msg  string
	err  error
}

// Error renders the position-prefixed message.
func (e *AsmError) Error() string {
	switch {
	case e.Line > 0 && e.Col > 0:
		return fmt.Sprintf("isa: line %d, col %d: %s", e.Line, e.Col, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("isa: line %d: %s", e.Line, e.Msg)
	default:
		return "isa: " + e.Msg
	}
}

// Unwrap exposes the underlying cause (e.g. ErrInvalidProgram).
func (e *AsmError) Unwrap() error { return e.err }

// tokenError is an internal parse error that remembers the offending token
// so the top-level Assemble loop can recover its column in the raw line.
type tokenError struct {
	tok string
	msg string
}

func (e *tokenError) Error() string { return e.msg }

func errTok(tok, format string, args ...any) error {
	return &tokenError{tok: tok, msg: fmt.Sprintf(format, args...)}
}

// Launch carries the launch-geometry directives of an assembled program.
// Fields are zero when the corresponding directive is absent; the workload
// layer applies defaults and range checks against the simulated GPU config.
type Launch struct {
	// WarpsPerCTA is the .warps directive (warps per CTA).
	WarpsPerCTA int
	// SharedMem is the .shmem directive (shared-memory bytes per CTA).
	SharedMem int
	// GridCTAs is the .grid directive (default grid size in CTAs).
	GridCTAs int
}

// EmitAsm renders a program in the assembly format accepted by Assemble.
// Branch targets become generated labels (L<pc>).
func EmitAsm(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".kernel %s\n.regs %d\n", p.Name, p.RegsPerThread)
	targets := map[int]bool{}
	for pc := range p.Instrs {
		if in := &p.Instrs[pc]; in.Op == OpBRA {
			targets[in.Target] = true
		}
	}
	for pc := range p.Instrs {
		if targets[pc] {
			fmt.Fprintf(&sb, "L%d:\n", pc)
		}
		sb.WriteString("  ")
		sb.WriteString(emitInstr(&p.Instrs[pc]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func emitInstr(in *Instr) string {
	var sb strings.Builder
	if in.Op == OpBRA && in.Pred.Valid() {
		fmt.Fprintf(&sb, "@%s ", in.Pred)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpNOP, OpBAR, OpEXIT:
	case OpBRA:
		fmt.Fprintf(&sb, " L%d", in.Target)
		if in.Trip > 0 {
			fmt.Fprintf(&sb, " trip=%d", in.Trip)
		}
		if in.Diverge {
			sb.WriteString(" diverge")
		}
	case OpLDG, OpLDS:
		addr := "-"
		if in.NSrc > 0 {
			addr = in.Srcs[0].String()
		}
		fmt.Fprintf(&sb, " %s, [%s]", in.Dst, addr)
		if in.Op == OpLDG {
			sb.WriteString(emitMem(&in.Mem))
		}
	case OpSTG, OpSTS:
		addr := "-"
		if in.NSrc > 1 {
			addr = in.Srcs[1].String()
		}
		fmt.Fprintf(&sb, " [%s], %s", addr, in.Srcs[0])
		if in.Op == OpSTG {
			sb.WriteString(emitMem(&in.Mem))
		}
	case OpMOV:
		if in.NSrc == 0 {
			fmt.Fprintf(&sb, " %s, #%d", in.Dst, in.Imm)
		} else {
			fmt.Fprintf(&sb, " %s, %s", in.Dst, in.Srcs[0])
		}
	case OpIADD:
		if in.NSrc == 1 {
			fmt.Fprintf(&sb, " %s, %s, #%d", in.Dst, in.Srcs[0], in.Imm)
		} else {
			fmt.Fprintf(&sb, " %s, %s, %s", in.Dst, in.Srcs[0], in.Srcs[1])
		}
	case OpSHF:
		fmt.Fprintf(&sb, " %s, %s, #%d", in.Dst, in.Srcs[0], in.Imm)
	case OpMUFU:
		fmt.Fprintf(&sb, " %s, %s", in.Dst, in.Srcs[0])
	default: // 2- and 3-source ALU forms
		parts := []string{in.Dst.String()}
		for _, r := range in.Srcs[:in.NSrc] {
			parts = append(parts, r.String())
		}
		sb.WriteString(" " + strings.Join(parts, ", "))
	}
	return sb.String()
}

func emitMem(m *MemDesc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, " pattern=%s", m.Pattern)
	if m.Stride != 0 {
		fmt.Fprintf(&sb, " stride=%d", m.Stride)
	}
	if m.Region != 0 {
		fmt.Fprintf(&sb, " region=%d", m.Region)
	}
	if m.Footprint != 0 {
		fmt.Fprintf(&sb, " footprint=%d", m.Footprint)
	}
	return sb.String()
}

// Assemble parses the assembly format into a validated Program. Every
// failure is an *AsmError.
func Assemble(text string) (*Program, error) {
	p, _, err := AssembleLaunch(text)
	return p, err
}

// AssembleLaunch is Assemble plus the launch directives (.warps/.shmem/
// .grid) the source declares, for callers that ingest whole workloads
// rather than bare programs.
func AssembleLaunch(text string) (*Program, Launch, error) {
	if len(text) > MaxSourceBytes {
		return nil, Launch{}, &AsmError{Msg: fmt.Sprintf("source too large: %d bytes (max %d)", len(text), MaxSourceBytes)}
	}
	a := &assembler{b: NewBuilder("kernel")}
	for lineNo, raw := range strings.Split(text, "\n") {
		if err := a.line(raw); err != nil {
			return nil, Launch{}, positioned(lineNo+1, raw, err)
		}
	}
	if a.name != "" {
		a.b.name = a.name
	}
	p, err := a.b.Build(a.minRegs)
	if err != nil {
		return nil, Launch{}, &AsmError{Msg: err.Error(), err: err}
	}
	return p, a.launch, nil
}

// positioned wraps a per-line parse error into an *AsmError, recovering the
// column of the offending token when the inner error recorded one.
func positioned(line int, raw string, err error) *AsmError {
	var te *tokenError
	if errors.As(err, &te) {
		col := 0
		if i := strings.Index(raw, te.tok); i >= 0 && te.tok != "" {
			col = i + 1
		}
		return &AsmError{Line: line, Col: col, Msg: te.msg, err: err}
	}
	return &AsmError{Line: line, Msg: err.Error(), err: err}
}

type assembler struct {
	b       *Builder
	name    string
	minRegs int
	launch  Launch
}

func (a *assembler) line(raw string) error {
	// Strip comments (';' or '//'; '#' marks immediates, not comments).
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	if i := strings.Index(raw, "//"); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}
	switch {
	case strings.HasPrefix(line, "."):
		return a.directive(line)
	case strings.HasSuffix(line, ":"):
		a.b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	return a.instr(line)
}

// directive parses a "." header line (.kernel/.regs/.warps/.shmem/.grid).
func (a *assembler) directive(line string) error {
	name, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	num := func(what string, min, max int) (int, error) {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return 0, errTok(rest, "bad %s %q: want an integer", what, rest)
		}
		if n < min || n > max {
			return 0, errTok(rest, "%s %d out of range [%d,%d]", what, n, min, max)
		}
		return n, nil
	}
	switch name {
	case ".kernel":
		if !validKernelName(rest) {
			return errTok(rest, "bad kernel name %q: want 1-64 chars of [A-Za-z0-9._-]", rest)
		}
		a.name = rest
		return nil
	case ".regs":
		n, err := num(".regs", 0, MaxRegs)
		if err != nil {
			return err
		}
		a.minRegs = n
		return nil
	case ".warps":
		n, err := num(".warps", 1, 64)
		if err != nil {
			return err
		}
		a.launch.WarpsPerCTA = n
		return nil
	case ".shmem":
		n, err := num(".shmem", 0, 1<<24)
		if err != nil {
			return err
		}
		a.launch.SharedMem = n
		return nil
	case ".grid":
		n, err := num(".grid", 1, 1<<22)
		if err != nil {
			return err
		}
		a.launch.GridCTAs = n
		return nil
	default:
		return errTok(name, "unknown directive %q", name)
	}
}

func validKernelName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// instr parses one instruction line.
func (a *assembler) instr(line string) error {
	pred := RegNone
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return errTok(line, "dangling predicate %q", line)
		}
		r, err := parseReg(line[1:sp])
		if err != nil {
			return err
		}
		pred = r
		line = strings.TrimSpace(line[sp+1:])
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	mnemonic = strings.ToUpper(mnemonic)
	ops, kv, err := splitOperands(rest)
	if err != nil {
		return err
	}
	if err := checkAttrs(mnemonic, kv); err != nil {
		return err
	}
	if pred != RegNone && mnemonic != "BRA" {
		return errTok(mnemonic, "predicate is only supported on BRA, not %s", mnemonic)
	}

	switch mnemonic {
	case "NOP":
		a.b.Nop()
	case "BAR":
		a.b.Bar()
	case "EXIT":
		a.b.Exit()
	case "BRA":
		if len(ops) != 1 {
			return fmt.Errorf("BRA wants a label, got %v", ops)
		}
		trip := int(kv["trip"])
		_, diverge := kv["diverge"]
		if pred == RegNone {
			a.b.Bra(ops[0])
		} else {
			a.b.BraCond(pred, ops[0], trip, diverge)
		}
	case "MOV":
		if len(ops) != 2 {
			return fmt.Errorf("MOV wants 2 operands, got %v", ops)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if imm, ok := parseImm(ops[1]); ok {
			a.b.MovI(dst, imm)
		} else {
			src, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			a.b.Mov(dst, src)
		}
	case "IADD":
		dst, srcA, err := parseTwo(ops)
		if err != nil {
			return err
		}
		if imm, ok := parseImm(ops[2]); ok {
			a.b.IAddI(dst, srcA, imm)
		} else {
			srcB, err := parseReg(ops[2])
			if err != nil {
				return err
			}
			a.b.IAdd(dst, srcA, srcB)
		}
	case "SHF":
		dst, srcA, err := parseTwo(ops)
		if err != nil {
			return err
		}
		imm, ok := parseImm(ops[2])
		if !ok {
			return errTok(ops[2], "SHF wants an immediate shift, got %q", ops[2])
		}
		a.b.Shf(dst, srcA, imm)
	case "IMUL", "ISETP", "FADD", "FMUL":
		dst, srcA, err := parseTwo(ops)
		if err != nil {
			return err
		}
		srcB, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		switch mnemonic {
		case "IMUL":
			a.b.IMul(dst, srcA, srcB)
		case "ISETP":
			a.b.ISetp(dst, srcA, srcB)
		case "FADD":
			a.b.FAdd(dst, srcA, srcB)
		case "FMUL":
			a.b.FMul(dst, srcA, srcB)
		}
	case "FFMA":
		if len(ops) != 4 {
			return fmt.Errorf("FFMA wants 4 operands, got %v", ops)
		}
		regs := make([]Reg, 4)
		for i, o := range ops {
			r, err := parseReg(o)
			if err != nil {
				return err
			}
			regs[i] = r
		}
		a.b.FFma(regs[0], regs[1], regs[2], regs[3])
	case "MUFU":
		if len(ops) != 2 {
			return fmt.Errorf("MUFU wants 2 operands, got %v", ops)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		srcA, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		a.b.Mufu(dst, srcA)
	case "LDG", "LDS":
		if len(ops) != 2 {
			return fmt.Errorf("%s wants dst, [addr], got %v", mnemonic, ops)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		addr, err := parseAddr(ops[1])
		if err != nil {
			return err
		}
		if mnemonic == "LDG" {
			a.b.Ldg(dst, addr, memFromKV(kv))
		} else {
			a.b.Lds(dst, addr)
		}
	case "STG", "STS":
		if len(ops) != 2 {
			return fmt.Errorf("%s wants [addr], src, got %v", mnemonic, ops)
		}
		addr, err := parseAddr(ops[0])
		if err != nil {
			return err
		}
		val, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		if mnemonic == "STG" {
			a.b.Stg(val, addr, memFromKV(kv))
		} else {
			a.b.Sts(val, addr)
		}
	default:
		return errTok(mnemonic, "unknown mnemonic %q", mnemonic)
	}
	return nil
}

// splitOperands separates comma-separated operands from trailing key=value
// attributes (and bare flags like "diverge").
func splitOperands(rest string) (ops []string, kv map[string]int64, err error) {
	kv = map[string]int64{}
	fields := strings.Fields(rest)
	var opText []string
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			n, perr := strconv.ParseInt(v, 10, 64)
			if perr != nil && k != "pattern" {
				return nil, nil, errTok(f, "bad attribute %q: %v", f, perr)
			}
			if k == "pattern" {
				n, perr = patternCode(v)
				if perr != nil {
					return nil, nil, errTok(f, "%v", perr)
				}
			}
			kv[k] = n
			continue
		}
		if f == "diverge" {
			kv["diverge"] = 1
			continue
		}
		opText = append(opText, f)
	}
	for _, part := range strings.Split(strings.Join(opText, " "), ",") {
		if p := strings.TrimSpace(part); p != "" {
			ops = append(ops, p)
		}
	}
	return ops, kv, nil
}

// allowedAttrs whitelists the key=value attributes each mnemonic accepts;
// attrBounds range-checks the values so untrusted input cannot smuggle
// truncating or negative descriptors into the timing model.
var allowedAttrs = map[string]map[string]bool{
	"BRA": {"trip": true, "diverge": true},
	"LDG": {"pattern": true, "stride": true, "region": true, "footprint": true},
	"STG": {"pattern": true, "stride": true, "region": true, "footprint": true},
}

var attrBounds = map[string]struct{ min, max int64 }{
	"trip":      {0, 1 << 30},
	"diverge":   {1, 1},
	"pattern":   {0, int64(PatBroadcast)},
	"stride":    {0, 1 << 20},
	"region":    {0, 255},
	"footprint": {0, 1 << 40},
}

func checkAttrs(mnemonic string, kv map[string]int64) error {
	if len(kv) == 0 {
		return nil
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	allowed := allowedAttrs[mnemonic]
	for _, k := range keys {
		if !allowed[k] {
			return errTok(k, "attribute %q not allowed on %s", k, mnemonic)
		}
		if b, ok := attrBounds[k]; ok {
			if v := kv[k]; v < b.min || v > b.max {
				return errTok(k, "attribute %s=%d out of range [%d,%d]", k, v, b.min, b.max)
			}
		}
	}
	return nil
}

func patternCode(s string) (int64, error) {
	switch s {
	case "coalesced":
		return int64(PatCoalesced), nil
	case "strided":
		return int64(PatStrided), nil
	case "random":
		return int64(PatRandom), nil
	case "broadcast":
		return int64(PatBroadcast), nil
	default:
		return 0, fmt.Errorf("unknown access pattern %q", s)
	}
}

func memFromKV(kv map[string]int64) MemDesc {
	return MemDesc{
		Pattern:   Pattern(kv["pattern"]),
		Stride:    int(kv["stride"]),
		Region:    uint8(kv["region"]),
		Footprint: kv["footprint"],
	}
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if s == "-" {
		return RegNone, nil
	}
	if len(s) < 2 || (s[0] != 'R' && s[0] != 'r') {
		return RegNone, errTok(s, "bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= MaxRegs {
		return RegNone, errTok(s, "bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (uint32, bool) {
	if !strings.HasPrefix(s, "#") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimPrefix(s, "#"), 0, 64)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

func parseAddr(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") || len(s) < 2 {
		return RegNone, errTok(s, "bad address operand %q", s)
	}
	return parseReg(s[1 : len(s)-1])
}

// parseTwo parses the destination and first source of a 3-operand form.
func parseTwo(ops []string) (dst, srcA Reg, err error) {
	if len(ops) != 3 {
		return RegNone, RegNone, fmt.Errorf("want 3 operands, got %v", ops)
	}
	if dst, err = parseReg(ops[0]); err != nil {
		return
	}
	srcA, err = parseReg(ops[1])
	return
}
