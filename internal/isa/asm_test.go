package isa

import (
	"reflect"
	"strings"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; a saxpy-shaped kernel
.kernel demo
.regs 12
  MOV R0, #0
  MOV R1, #16
top:
  LDG R2, [R0] pattern=coalesced region=1 footprint=1048576
  FFMA R3, R2, R2, R3
  IADD R0, R0, #1
  ISETP R4, R0, R1
  @R4 BRA top trip=16
  STG [R0], R3 region=15 footprint=1048576
  EXIT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q, want demo", p.Name)
	}
	if p.RegsPerThread != 12 {
		t.Errorf("regs = %d, want 12 (from .regs)", p.RegsPerThread)
	}
	if p.Len() != 9 {
		t.Fatalf("len = %d, want 9", p.Len())
	}
	ldg := p.At(2)
	if ldg.Op != OpLDG || ldg.Mem.Region != 1 || ldg.Mem.Footprint != 1<<20 {
		t.Errorf("LDG parsed wrong: %+v", ldg)
	}
	bra := p.At(6)
	if bra.Op != OpBRA || bra.Target != 2 || bra.Trip != 16 || bra.Pred != 4 {
		t.Errorf("BRA parsed wrong: %+v", bra)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad-mnemonic", "FROB R1, R2\nEXIT"},
		{"bad-register", "MOV R99, #1\nEXIT"},
		{"undefined-label", "BRA nowhere\nEXIT"},
		{"bad-regs-directive", ".regs banana\nEXIT"},
		{"dangling-predicate", "@R1\nEXIT"},
		{"bad-address", "LDG R1, R0\nEXIT"},
		{"bad-shift", "SHF R1, R0, R2\nEXIT"},
		{"bad-attribute", "LDG R1, [R0] footprint=huge\nEXIT"},
		{"bad-pattern", "LDG R1, [R0] pattern=zigzag\nEXIT"},
		{"no-exit", "MOV R0, #1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Errorf("Assemble accepted %q", c.src)
			}
		})
	}
}

func TestAssembleDivergeFlag(t *testing.T) {
	src := `
  ISETP R1, R0, R0
  @R1 BRA else diverge
  IADD R2, R0, #1
  BRA join
else:
  IADD R2, R0, #2
join:
  EXIT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.At(1).Diverge {
		t.Error("diverge flag not parsed")
	}
}

func TestEmitAsmRoundTripHandWritten(t *testing.T) {
	b := NewBuilder("rt")
	b.MovI(0, 7)
	b.Shf(1, 0, 2)
	b.Label("loop")
	b.Ldg(2, 1, MemDesc{Pattern: PatStrided, Stride: 4, Region: 3, Footprint: 4 << 20})
	b.Mufu(3, 2)
	b.Sts(3, 1)
	b.Bar()
	b.Lds(4, 1)
	b.FAdd(5, 4, 3)
	b.IAddI(0, 0, 1)
	b.ISetp(6, 0, 1)
	b.Loop(6, "loop", 8)
	b.Stg(5, 1, MemDesc{Pattern: PatCoalesced, Region: 15})
	b.Exit()
	p := b.MustBuild(20)

	p2, err := Assemble(EmitAsm(p))
	if err != nil {
		t.Fatalf("round-trip assemble failed: %v\n%s", err, EmitAsm(p))
	}
	if p2.Name != p.Name || p2.RegsPerThread != p.RegsPerThread {
		t.Errorf("header mismatch: %s/%d vs %s/%d", p2.Name, p2.RegsPerThread, p.Name, p.RegsPerThread)
	}
	if !reflect.DeepEqual(p.Instrs, p2.Instrs) {
		for i := range p.Instrs {
			if !reflect.DeepEqual(p.Instrs[i], p2.Instrs[i]) {
				t.Errorf("pc %d: %+v != %+v", i, p.Instrs[i], p2.Instrs[i])
			}
		}
	}
}

func TestEmitAsmContainsLabels(t *testing.T) {
	b := NewBuilder("labels")
	b.MovI(1, 1)
	b.Label("top").Nop()
	b.Loop(1, "top", 4)
	b.Exit()
	asm := EmitAsm(b.MustBuild(0))
	if !strings.Contains(asm, "L1:") || !strings.Contains(asm, "BRA L1 trip=4") {
		t.Errorf("emitted asm missing label structure:\n%s", asm)
	}
}
