package isa

import (
	"fmt"
	"strings"
)

// String renders one instruction in a SASS-like listing style, e.g.
// "IADD R3, R1, R2" or "@R5 BRA 0x0010 (trip=8)".
func (in *Instr) String() string {
	var sb strings.Builder
	if in.Pred.Valid() && in.Op == OpBRA {
		fmt.Fprintf(&sb, "@%v ", in.Pred)
	}
	sb.WriteString(in.Op.String())
	var ops []string
	switch in.Op {
	case OpBRA:
		ops = append(ops, fmt.Sprintf("0x%04X", in.Target*8))
	case OpLDG, OpLDS:
		ops = append(ops, in.Dst.String())
		addr := "-"
		if in.NSrc > 0 {
			addr = in.Srcs[0].String()
		}
		ops = append(ops, "["+addr+"]")
	case OpSTG, OpSTS:
		addr := "-"
		if in.NSrc > 1 {
			addr = in.Srcs[1].String()
		}
		ops = append(ops, "["+addr+"]")
		if in.NSrc > 0 {
			ops = append(ops, in.Srcs[0].String())
		}
	case OpNOP, OpBAR, OpEXIT:
		// no operands
	default:
		if in.Dst.Valid() {
			ops = append(ops, in.Dst.String())
		}
		for _, s := range in.Srcs[:in.NSrc] {
			ops = append(ops, s.String())
		}
		if in.NSrc == 0 || in.Op == OpSHF || (in.Op == OpIADD && in.NSrc == 1) {
			ops = append(ops, fmt.Sprintf("#%d", in.Imm))
		}
	}
	if len(ops) > 0 {
		sb.WriteString(" ")
		sb.WriteString(strings.Join(ops, ", "))
	}
	if in.Op == OpBRA && in.Trip > 0 {
		fmt.Fprintf(&sb, " (trip=%d)", in.Trip)
	}
	if in.Op == OpBRA && in.Diverge {
		sb.WriteString(" (diverge)")
	}
	return sb.String()
}

// Disassemble renders the whole program, one instruction per line with
// byte-style PC addresses (8 bytes per instruction, as in the paper's
// Figure 7 listing).
func Disassemble(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// kernel %s: %d instructions, %d regs/thread\n", p.Name, len(p.Instrs), p.RegsPerThread)
	for pc := range p.Instrs {
		fmt.Fprintf(&sb, "/*%04X*/  %s\n", pc*8, p.Instrs[pc].String())
	}
	return sb.String()
}
