// Package isa defines a compact, SASS-like GPU instruction set used by the
// FineReg simulator, its compiler liveness pass, and the functional SIMT
// executor.
//
// The ISA is deliberately small: it carries exactly the information the
// paper's mechanisms depend on — register def/use sets (for live-register
// analysis), latency classes (ALU / SFU / shared / global memory), control
// flow (loops and divergent branches), and memory access descriptors that
// drive the cache and DRAM models. Programs are straight arrays of
// instructions addressed by integer PC; one PC step equals one instruction.
package isa

import "fmt"

// Reg names an architectural per-thread register R0..R63. The 64-register
// ceiling matches the paper's 64-bit live-register bit vector (Section V-A:
// "The bit vector is 64-bit long, i.e., maximum number of registers per
// thread").
type Reg uint8

// MaxRegs is the number of addressable architectural registers per thread.
const MaxRegs = 64

// RegNone marks an absent register operand (no destination, no predicate).
const RegNone Reg = 0xFF

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r < MaxRegs }

// String renders the register in SASS style ("R7"), or "-" for RegNone.
func (r Reg) String() string {
	if r == RegNone {
		return "-"
	}
	return fmt.Sprintf("R%d", uint8(r))
}

// Op enumerates instruction opcodes. The set mirrors the SASS subset that
// appears in the paper's Figure 7 example (MOV/LD/IADD/ISETP/STS/BRA...)
// plus the floating-point and SFU operations the synthetic benchmarks need.
type Op uint8

const (
	// OpNOP does nothing; it still occupies an issue slot.
	OpNOP Op = iota
	// OpMOV copies Srcs[0] (or Imm when NSrc==0) into Dst.
	OpMOV
	// OpIADD writes Srcs[0]+Srcs[1] (integer) into Dst.
	OpIADD
	// OpIMUL writes Srcs[0]*Srcs[1] (integer) into Dst.
	OpIMUL
	// OpISETP writes 1 into Dst when Srcs[0] < Srcs[1], else 0. Used as a
	// predicate producer for conditional branches.
	OpISETP
	// OpSHF writes Srcs[0] << Imm into Dst (ALU latency class).
	OpSHF
	// OpFADD writes float32(Srcs[0]) + float32(Srcs[1]) into Dst.
	OpFADD
	// OpFMUL writes float32(Srcs[0]) * float32(Srcs[1]) into Dst.
	OpFMUL
	// OpFFMA writes Srcs[0]*Srcs[1]+Srcs[2] (float32) into Dst.
	OpFFMA
	// OpMUFU is the special-function unit class (reciprocal, rsqrt...);
	// functionally it computes 1/x of Srcs[0].
	OpMUFU
	// OpLDG loads 4 bytes per thread from global memory into Dst. The
	// address stream is described by Mem; Srcs[0] (optional) is the
	// address-forming register, recorded so liveness sees the use.
	OpLDG
	// OpSTG stores Srcs[0] to global memory (address register Srcs[1]).
	OpSTG
	// OpLDS loads from shared memory into Dst (address register Srcs[0]).
	OpLDS
	// OpSTS stores Srcs[0] into shared memory (address register Srcs[1]).
	OpSTS
	// OpBRA branches to Target. With Pred==RegNone the branch is
	// unconditional; otherwise it is conditional on the predicate register.
	// A backward target makes it a loop branch with trip count Trip.
	OpBRA
	// OpBAR is a CTA-wide barrier; all warps of the CTA must arrive.
	OpBAR
	// OpEXIT terminates the thread (warp, in the timing model).
	OpEXIT
)

var opNames = [...]string{
	OpNOP: "NOP", OpMOV: "MOV", OpIADD: "IADD", OpIMUL: "IMUL",
	OpISETP: "ISETP", OpSHF: "SHF", OpFADD: "FADD", OpFMUL: "FMUL",
	OpFFMA: "FFMA", OpMUFU: "MUFU", OpLDG: "LDG", OpSTG: "STG",
	OpLDS: "LDS", OpSTS: "STS", OpBRA: "BRA", OpBAR: "BAR", OpEXIT: "EXIT",
}

// String returns the SASS-style mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Class buckets opcodes by execution resource / latency behaviour.
type Class uint8

const (
	// ClassALU covers integer and single-precision float pipeline ops.
	ClassALU Class = iota
	// ClassSFU covers special-function unit ops (longer fixed latency).
	ClassSFU
	// ClassMemGlobal covers global loads/stores; latency comes from the
	// memory hierarchy model.
	ClassMemGlobal
	// ClassMemShared covers shared-memory accesses (fixed on-chip latency).
	ClassMemShared
	// ClassControl covers branches and EXIT.
	ClassControl
	// ClassSync covers barriers.
	ClassSync
)

// ClassOf returns the latency class of an opcode.
func ClassOf(o Op) Class {
	switch o {
	case OpMUFU:
		return ClassSFU
	case OpLDG, OpSTG:
		return ClassMemGlobal
	case OpLDS, OpSTS:
		return ClassMemShared
	case OpBRA, OpEXIT:
		return ClassControl
	case OpBAR:
		return ClassSync
	default:
		return ClassALU
	}
}

// Pattern describes how the 32 threads of a warp spread a memory access
// across addresses; it determines how many 128-byte transactions the
// coalescer emits.
type Pattern uint8

const (
	// PatCoalesced: consecutive 4-byte words — one 128 B transaction.
	PatCoalesced Pattern = iota
	// PatStrided: constant stride between lanes — Stride transactions
	// (capped at 32).
	PatStrided
	// PatRandom: scattered — 32 transactions.
	PatRandom
	// PatBroadcast: all lanes read one address — one transaction.
	PatBroadcast
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatCoalesced:
		return "coalesced"
	case PatStrided:
		return "strided"
	case PatRandom:
		return "random"
	case PatBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// MemDesc describes the address stream of a global-memory instruction for
// the timing model. Region selects one of the kernel's logical arrays;
// Footprint bounds the bytes the kernel touches in that region and thereby
// controls cache behaviour; Stride applies to PatStrided (in 4-byte words).
type MemDesc struct {
	Pattern   Pattern
	Stride    int
	Region    uint8
	Footprint int64
}

// Instr is a single machine instruction.
//
// NSrc gives how many leading entries of Srcs are meaningful. Pred, when
// valid, is an extra source (a predicate guarding a conditional BRA).
// Target/Trip/Diverge only apply to OpBRA: a Target at a lower PC denotes a
// loop back-edge that the timing model takes Trip times per entry; a
// forward conditional branch with Diverge set makes warps execute both
// sides under PDOM reconvergence.
type Instr struct {
	Op      Op
	Dst     Reg
	Srcs    [3]Reg
	NSrc    uint8
	Pred    Reg
	Target  int
	Trip    int
	Diverge bool
	Imm     uint32
	Mem     MemDesc
}

// Sources returns the meaningful source registers, excluding the predicate.
func (in *Instr) Sources() []Reg { return in.Srcs[:in.NSrc] }

// Reads reports every register the instruction reads (sources + predicate).
func (in *Instr) Reads(visit func(Reg)) {
	for _, r := range in.Srcs[:in.NSrc] {
		if r.Valid() {
			visit(r)
		}
	}
	if in.Pred.Valid() {
		visit(in.Pred)
	}
}

// WritesReg reports whether the instruction defines a destination register.
func (in *Instr) WritesReg() bool { return in.Dst.Valid() }

// IsBranch reports whether the instruction is a control transfer.
func (in *Instr) IsBranch() bool { return in.Op == OpBRA }

// IsConditional reports whether a branch depends on a predicate.
func (in *Instr) IsConditional() bool { return in.Op == OpBRA && in.Pred.Valid() }

// IsBackward reports whether a branch at pc jumps backwards (a loop edge).
func (in *Instr) IsBackward(pc int) bool { return in.Op == OpBRA && in.Target <= pc }

// IsMem reports whether the instruction touches global or shared memory.
func (in *Instr) IsMem() bool {
	c := ClassOf(in.Op)
	return c == ClassMemGlobal || c == ClassMemShared
}

// IsGlobalMem reports whether the instruction touches global memory.
func (in *Instr) IsGlobalMem() bool { return ClassOf(in.Op) == ClassMemGlobal }

// IsLoad reports whether the instruction is a load (writes a register from
// memory).
func (in *Instr) IsLoad() bool { return in.Op == OpLDG || in.Op == OpLDS }

// Program is a straight-line array of instructions addressed by PC index,
// together with the static register demand the CTA scheduler allocates.
type Program struct {
	// Name identifies the kernel (benchmark abbreviation in Table II).
	Name string
	// Instrs is the instruction stream; PC i executes Instrs[i].
	Instrs []Instr
	// RegsPerThread is the statically allocated architectural register
	// count per thread; every operand must reference a register below it.
	RegsPerThread int
}

// Len returns the static instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at pc. It panics on out-of-range pc, which
// always indicates a simulator bug rather than a recoverable condition.
func (p *Program) At(pc int) *Instr { return &p.Instrs[pc] }

// MaxLiveRegs returns RegsPerThread, the worst-case live set size.
func (p *Program) MaxLiveRegs() int { return p.RegsPerThread }
