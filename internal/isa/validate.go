package isa

import (
	"errors"
	"fmt"
)

// ErrInvalidProgram is wrapped by every validation failure so callers can
// test with errors.Is.
var ErrInvalidProgram = errors.New("isa: invalid program")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidProgram, fmt.Sprintf(format, args...))
}

// Validate checks the structural invariants the simulator and liveness pass
// rely on:
//
//   - the program is non-empty and ends in EXIT;
//   - every register operand is below RegsPerThread (and RegsPerThread ≤ 64,
//     the live bit-vector width);
//   - every branch target is in range;
//   - every backward branch carries a positive trip count and a predicate
//     (an unconditional backward branch would never terminate);
//   - source/destination counts match the opcode's shape.
func Validate(p *Program) error {
	if p == nil || len(p.Instrs) == 0 {
		return invalidf("empty program")
	}
	if p.RegsPerThread < 1 || p.RegsPerThread > MaxRegs {
		return invalidf("%s: RegsPerThread %d out of range [1,%d]", p.Name, p.RegsPerThread, MaxRegs)
	}
	if p.Instrs[len(p.Instrs)-1].Op != OpEXIT {
		return invalidf("%s: last instruction must be EXIT, got %v", p.Name, p.Instrs[len(p.Instrs)-1].Op)
	}
	checkReg := func(pc int, r Reg, role string) error {
		if r == RegNone {
			return nil
		}
		if int(r) >= p.RegsPerThread {
			return invalidf("%s: pc %d: %s register %v >= RegsPerThread %d", p.Name, pc, role, r, p.RegsPerThread)
		}
		return nil
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.NSrc > 3 {
			return invalidf("%s: pc %d: NSrc %d > 3", p.Name, pc, in.NSrc)
		}
		if err := checkReg(pc, in.Dst, "destination"); err != nil {
			return err
		}
		for _, s := range in.Srcs[:in.NSrc] {
			if err := checkReg(pc, s, "source"); err != nil {
				return err
			}
		}
		if err := checkReg(pc, in.Pred, "predicate"); err != nil {
			return err
		}
		if in.Op == OpBRA {
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return invalidf("%s: pc %d: branch target %d out of range [0,%d)", p.Name, pc, in.Target, len(p.Instrs))
			}
			if in.IsBackward(pc) {
				if in.Trip < 1 {
					return invalidf("%s: pc %d: backward branch needs Trip >= 1, got %d", p.Name, pc, in.Trip)
				}
				if !in.Pred.Valid() {
					return invalidf("%s: pc %d: backward branch must be conditional", p.Name, pc)
				}
			}
		}
		if in.IsLoad() && !in.Dst.Valid() {
			return invalidf("%s: pc %d: load without destination", p.Name, pc)
		}
		if (in.Op == OpSTG || in.Op == OpSTS) && in.NSrc == 0 {
			return invalidf("%s: pc %d: store without value source", p.Name, pc)
		}
	}
	return nil
}
