package isa

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// FuzzAssemble pins the admission-hardening contract of the assembler:
// arbitrary bytes never panic, never allocate unboundedly (MaxSourceBytes
// rejects oversized input up front), every failure is a structured
// *AsmError, and every accepted program round-trips exactly through
// EmitAsm → Assemble.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"EXIT",
		"MOV",    // regression: used to index ops[0] before the arity check
		"MOV R0", // one operand
		"MOV R0, #1\nEXIT",
		".kernel demo\n.regs 12\n.warps 4\n.shmem 2048\n.grid 64\nMOV R0, #0\nEXIT",
		"top:\n  IADD R0, R0, #1\n  ISETP R1, R0, R2\n  @R1 BRA top trip=8\n  EXIT",
		"LDG R2, [R0] pattern=strided stride=4 region=1 footprint=1048576\nEXIT",
		"STG [R0], R3 region=255\nEXIT",
		"@R1 BRA skip diverge\nNOP\nskip:\nEXIT",
		"LDG R1, [R0] footprint=-1\nEXIT",       // negative attribute
		"LDG R1, [R0] region=300\nEXIT",         // would truncate via uint8
		"BRA back trip=99999999999999999\nEXIT", // attribute overflow
		"@R1\nEXIT",                             // dangling predicate
		".kernel bad name\nEXIT",
		".grid 0\nEXIT",
		"FFMA R1, R2, R3\nEXIT",
		"SHF R1, R0, R2\nEXIT",
		"\x00\xff MOV , , ,",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, launch, err := AssembleLaunch(src)
		if err != nil {
			var ae *AsmError
			if !errors.As(err, &ae) {
				t.Fatalf("error is not *AsmError: %T %v", err, err)
			}
			if p != nil {
				t.Fatalf("non-nil program alongside error %v", err)
			}
			return
		}
		// Accepted programs must satisfy the validator the simulator trusts.
		if verr := Validate(p); verr != nil {
			t.Fatalf("assembled program fails Validate: %v\nsource:\n%s", verr, src)
		}
		if launch.WarpsPerCTA < 0 || launch.SharedMem < 0 || launch.GridCTAs < 0 {
			t.Fatalf("negative launch geometry %+v", launch)
		}
		// asm → disasm → asm must reproduce the program exactly.
		emitted := EmitAsm(p)
		p2, err := Assemble(emitted)
		if err != nil {
			t.Fatalf("re-assembling emitted asm failed: %v\nemitted:\n%s", err, emitted)
		}
		if p.Name != p2.Name || p.RegsPerThread != p2.RegsPerThread || !reflect.DeepEqual(p.Instrs, p2.Instrs) {
			t.Fatalf("round-trip mismatch\noriginal: %+v\nreparsed: %+v\nemitted:\n%s", p, p2, emitted)
		}
	})
}

// TestAssembleNoPanicOnShortOperands locks in the arity checks for every
// mnemonic: missing operands must produce an error, not an index panic.
func TestAssembleNoPanicOnShortOperands(t *testing.T) {
	mnemonics := []string{
		"MOV", "IADD", "IMUL", "ISETP", "SHF", "FADD", "FMUL", "FFMA",
		"MUFU", "LDG", "LDS", "STG", "STS", "BRA",
	}
	suffixes := []string{"", " R0", " R0,", " [R0]", " R0, R1, R2, R3, R4"}
	for _, m := range mnemonics {
		for _, suf := range suffixes {
			src := m + suf + "\nEXIT"
			p, err := Assemble(src)
			if err == nil && p == nil {
				t.Errorf("Assemble(%q): nil program with nil error", src)
			}
			// Most of these are malformed; the point is no panic and a
			// structured error when rejected.
			if err != nil {
				var ae *AsmError
				if !errors.As(err, &ae) {
					t.Errorf("Assemble(%q): error is not *AsmError: %v", src, err)
				}
			}
		}
	}
}

// TestAsmErrorPositions checks that structured errors carry usable
// line/column information for the serve layer's 400 bodies.
func TestAsmErrorPositions(t *testing.T) {
	src := ".kernel demo\n  MOV R0, #0\n  MOV R99, #1\n  EXIT"
	_, err := Assemble(src)
	var ae *AsmError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AsmError, got %T %v", err, err)
	}
	if ae.Line != 3 {
		t.Errorf("Line = %d, want 3", ae.Line)
	}
	if ae.Col != strings.Index("  MOV R99, #1", "R99")+1 {
		t.Errorf("Col = %d, want column of R99", ae.Col)
	}
	if !strings.Contains(ae.Msg, "R99") {
		t.Errorf("Msg = %q, want mention of R99", ae.Msg)
	}
}

// TestAssembleSourceCap rejects oversized input before any parsing work.
func TestAssembleSourceCap(t *testing.T) {
	_, err := Assemble(strings.Repeat("; filler\n", MaxSourceBytes/8))
	var ae *AsmError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AsmError for oversized source, got %v", err)
	}
	if ae.Line != 0 {
		t.Errorf("size-cap error should not carry a line, got %d", ae.Line)
	}
}

// TestAssembleLaunchDirectives parses the launch geometry header.
func TestAssembleLaunchDirectives(t *testing.T) {
	src := ".kernel lg\n.warps 6\n.shmem 4096\n.grid 128\nMOV R0, #1\nEXIT"
	p, launch, err := AssembleLaunch(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "lg" {
		t.Errorf("name = %q", p.Name)
	}
	want := Launch{WarpsPerCTA: 6, SharedMem: 4096, GridCTAs: 128}
	if launch != want {
		t.Errorf("launch = %+v, want %+v", launch, want)
	}
	// Assemble must accept the same source and simply drop the geometry.
	if _, err := Assemble(src); err != nil {
		t.Errorf("Assemble rejects launch directives: %v", err)
	}
}

// TestAssembleRejectsHostileAttributes pins the attribute bounds that keep
// untrusted descriptors out of the timing model.
func TestAssembleRejectsHostileAttributes(t *testing.T) {
	cases := []struct{ name, src string }{
		{"negative-footprint", "LDG R1, [R0] footprint=-1\nEXIT"},
		{"region-truncation", "LDG R1, [R0] region=300\nEXIT"},
		{"negative-stride", "LDG R1, [R0] stride=-4\nEXIT"},
		{"trip-overflow", "ISETP R1, R0, R0\nl:\n@R1 BRA l trip=99999999999\nEXIT"},
		{"attr-on-wrong-op", "MOV R0, #1 trip=4\nEXIT"},
		{"pred-on-non-bra", "@R1 MOV R0, #1\nEXIT"},
		{"unknown-directive", ".frobnicate 3\nEXIT"},
		{"grid-zero", ".grid 0\nEXIT"},
		{"warps-huge", ".warps 1000\nEXIT"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Errorf("Assemble accepted %q", c.src)
			}
		})
	}
}
