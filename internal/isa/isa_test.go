package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := Reg(7).String(); got != "R7" {
		t.Errorf("Reg(7).String() = %q, want R7", got)
	}
	if got := RegNone.String(); got != "-" {
		t.Errorf("RegNone.String() = %q, want -", got)
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < MaxRegs; r++ {
		if !r.Valid() {
			t.Fatalf("Reg(%d).Valid() = false, want true", r)
		}
	}
	if Reg(MaxRegs).Valid() {
		t.Errorf("Reg(%d).Valid() = true, want false", MaxRegs)
	}
	if RegNone.Valid() {
		t.Error("RegNone.Valid() = true, want false")
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpIADD, ClassALU}, {OpFFMA, ClassALU}, {OpMOV, ClassALU},
		{OpMUFU, ClassSFU},
		{OpLDG, ClassMemGlobal}, {OpSTG, ClassMemGlobal},
		{OpLDS, ClassMemShared}, {OpSTS, ClassMemShared},
		{OpBRA, ClassControl}, {OpEXIT, ClassControl},
		{OpBAR, ClassSync},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestInstrPredicates(t *testing.T) {
	ldg := Instr{Op: OpLDG, Dst: 1, Pred: RegNone}
	if !ldg.IsMem() || !ldg.IsGlobalMem() || !ldg.IsLoad() {
		t.Error("LDG should be mem, global, load")
	}
	sts := Instr{Op: OpSTS, Srcs: [3]Reg{2}, NSrc: 1, Dst: RegNone, Pred: RegNone}
	if !sts.IsMem() || sts.IsGlobalMem() || sts.IsLoad() {
		t.Error("STS should be mem, not global, not load")
	}
	bra := Instr{Op: OpBRA, Target: 0, Pred: 3, Dst: RegNone}
	if !bra.IsBranch() || !bra.IsConditional() {
		t.Error("predicated BRA should be conditional branch")
	}
	if !bra.IsBackward(5) {
		t.Error("BRA to 0 from pc 5 should be backward")
	}
	if bra.IsBackward(0) != true {
		t.Error("BRA to own pc counts as backward (self-loop)")
	}
}

func TestInstrReads(t *testing.T) {
	in := Instr{Op: OpFFMA, Dst: 0, Srcs: [3]Reg{1, 2, 3}, NSrc: 3, Pred: 4}
	var got []Reg
	in.Reads(func(r Reg) { got = append(got, r) })
	want := []Reg{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Reads visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reads visited %v, want %v", got, want)
		}
	}
}

func buildLoopProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("test-loop")
	b.MovI(0, 0).
		MovI(1, 16).
		Label("top").
		Ldg(2, 0, MemDesc{Pattern: PatCoalesced, Footprint: 1 << 20}).
		FMul(3, 2, 2).
		Stg(3, 0, MemDesc{Pattern: PatCoalesced, Region: 1, Footprint: 1 << 20}).
		IAddI(0, 0, 1).
		ISetp(4, 0, 1).
		Loop(4, "top", 16).
		Exit()
	return b.MustBuild(0)
}

func TestBuilderLoop(t *testing.T) {
	p := buildLoopProgram(t)
	if p.Len() != 9 {
		t.Fatalf("program length = %d, want 9", p.Len())
	}
	bra := p.At(7)
	if bra.Op != OpBRA || bra.Target != 2 || bra.Trip != 16 {
		t.Errorf("loop branch = %+v, want BRA target 2 trip 16", bra)
	}
	if p.RegsPerThread != 5 {
		t.Errorf("RegsPerThread = %d, want 5", p.RegsPerThread)
	}
}

func TestBuilderMinRegs(t *testing.T) {
	b := NewBuilder("minregs")
	b.MovI(0, 1).Exit()
	p := b.MustBuild(40)
	if p.RegsPerThread != 40 {
		t.Errorf("RegsPerThread = %d, want 40 (rounded up)", p.RegsPerThread)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Bra("nowhere").Exit()
	if _, err := b.Build(0); err == nil {
		t.Fatal("Build with undefined label should fail")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x").Nop().Label("x").Exit()
	if _, err := b.Build(0); err == nil {
		t.Fatal("Build with duplicate label should fail")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"empty", &Program{Name: "e", RegsPerThread: 1}},
		{"no-exit", &Program{Name: "n", RegsPerThread: 1, Instrs: []Instr{{Op: OpNOP, Dst: RegNone, Pred: RegNone}}}},
		{"reg-oob", &Program{Name: "r", RegsPerThread: 2, Instrs: []Instr{
			{Op: OpMOV, Dst: 5, Pred: RegNone},
			{Op: OpEXIT, Dst: RegNone, Pred: RegNone},
		}}},
		{"target-oob", &Program{Name: "t", RegsPerThread: 1, Instrs: []Instr{
			{Op: OpBRA, Dst: RegNone, Pred: RegNone, Target: 99},
			{Op: OpEXIT, Dst: RegNone, Pred: RegNone},
		}}},
		{"backward-no-trip", &Program{Name: "b", RegsPerThread: 1, Instrs: []Instr{
			{Op: OpNOP, Dst: RegNone, Pred: RegNone},
			{Op: OpBRA, Dst: RegNone, Pred: 0, Target: 0},
			{Op: OpEXIT, Dst: RegNone, Pred: RegNone},
		}}},
		{"backward-uncond", &Program{Name: "u", RegsPerThread: 1, Instrs: []Instr{
			{Op: OpNOP, Dst: RegNone, Pred: RegNone},
			{Op: OpBRA, Dst: RegNone, Pred: RegNone, Target: 0, Trip: 4},
			{Op: OpEXIT, Dst: RegNone, Pred: RegNone},
		}}},
		{"load-no-dst", &Program{Name: "l", RegsPerThread: 1, Instrs: []Instr{
			{Op: OpLDG, Dst: RegNone, Pred: RegNone},
			{Op: OpEXIT, Dst: RegNone, Pred: RegNone},
		}}},
		{"too-many-regs", &Program{Name: "m", RegsPerThread: 65, Instrs: []Instr{
			{Op: OpEXIT, Dst: RegNone, Pred: RegNone},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Validate(c.p)
			if err == nil {
				t.Fatal("Validate accepted invalid program")
			}
			if !errors.Is(err, ErrInvalidProgram) {
				t.Errorf("error %v should wrap ErrInvalidProgram", err)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	p := buildLoopProgram(t)
	if err := Validate(p); err != nil {
		t.Fatalf("Validate(valid program) = %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	p := buildLoopProgram(t)
	asm := Disassemble(p)
	for _, want := range []string{"MOV R0, #0", "LDG R2, [R0]", "FMUL R3, R2, R2", "@R4 BRA 0x0010 (trip=16)", "EXIT"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestOpStringTotal(t *testing.T) {
	for op := OpNOP; op <= OpEXIT; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("Op(%d) has no name", op)
		}
	}
	if s := Op(200).String(); !strings.HasPrefix(s, "OP(") {
		t.Errorf("unknown op string = %q", s)
	}
}

// Property: ClassOf is total and stable — every opcode maps to exactly one
// class, and memory predicates agree with the class.
func TestClassConsistencyQuick(t *testing.T) {
	f := func(raw uint8) bool {
		op := Op(raw % uint8(OpEXIT+1))
		in := Instr{Op: op, Dst: RegNone, Pred: RegNone}
		c := ClassOf(op)
		memByClass := c == ClassMemGlobal || c == ClassMemShared
		return in.IsMem() == memByClass
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
