package isa

import "fmt"

// Builder assembles a Program instruction by instruction with symbolic
// labels, so kernel generators read like assembly listings. Forward label
// references are fixed up at Build time.
type Builder struct {
	name   string
	instrs []Instr
	labels map[string]int
	fixups []fixup
	maxReg Reg
	errs   []error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.instrs) }

// Label binds name to the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	return b
}

func (b *Builder) note(r Reg) {
	if r.Valid() && r > b.maxReg {
		b.maxReg = r
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.note(in.Dst)
	for _, s := range in.Srcs[:in.NSrc] {
		b.note(s)
	}
	b.note(in.Pred)
	b.instrs = append(b.instrs, in)
	return b
}

// Nop emits a NOP.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNOP, Dst: RegNone, Pred: RegNone}) }

// MovI emits MOV dst, #imm.
func (b *Builder) MovI(dst Reg, imm uint32) *Builder {
	return b.emit(Instr{Op: OpMOV, Dst: dst, Imm: imm, Pred: RegNone})
}

// Mov emits MOV dst, src.
func (b *Builder) Mov(dst, src Reg) *Builder {
	return b.emit(Instr{Op: OpMOV, Dst: dst, Srcs: [3]Reg{src}, NSrc: 1, Pred: RegNone})
}

// IAdd emits IADD dst, a, c.
func (b *Builder) IAdd(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpIADD, Dst: dst, Srcs: [3]Reg{a, c}, NSrc: 2, Pred: RegNone})
}

// IAddI emits IADD dst, a, #imm (immediate addend).
func (b *Builder) IAddI(dst, a Reg, imm uint32) *Builder {
	return b.emit(Instr{Op: OpIADD, Dst: dst, Srcs: [3]Reg{a}, NSrc: 1, Imm: imm, Pred: RegNone})
}

// IMul emits IMUL dst, a, c.
func (b *Builder) IMul(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpIMUL, Dst: dst, Srcs: [3]Reg{a, c}, NSrc: 2, Pred: RegNone})
}

// ISetp emits ISETP dst, a, c (dst = a < c).
func (b *Builder) ISetp(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpISETP, Dst: dst, Srcs: [3]Reg{a, c}, NSrc: 2, Pred: RegNone})
}

// Shf emits SHF dst, a, #imm.
func (b *Builder) Shf(dst, a Reg, imm uint32) *Builder {
	return b.emit(Instr{Op: OpSHF, Dst: dst, Srcs: [3]Reg{a}, NSrc: 1, Imm: imm, Pred: RegNone})
}

// FAdd emits FADD dst, a, c.
func (b *Builder) FAdd(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpFADD, Dst: dst, Srcs: [3]Reg{a, c}, NSrc: 2, Pred: RegNone})
}

// FMul emits FMUL dst, a, c.
func (b *Builder) FMul(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpFMUL, Dst: dst, Srcs: [3]Reg{a, c}, NSrc: 2, Pred: RegNone})
}

// FFma emits FFMA dst, a, c, acc.
func (b *Builder) FFma(dst, a, c, acc Reg) *Builder {
	return b.emit(Instr{Op: OpFFMA, Dst: dst, Srcs: [3]Reg{a, c, acc}, NSrc: 3, Pred: RegNone})
}

// Mufu emits MUFU dst, a (special-function op).
func (b *Builder) Mufu(dst, a Reg) *Builder {
	return b.emit(Instr{Op: OpMUFU, Dst: dst, Srcs: [3]Reg{a}, NSrc: 1, Pred: RegNone})
}

// Ldg emits LDG dst, [addr] with the given global-memory descriptor.
func (b *Builder) Ldg(dst, addr Reg, mem MemDesc) *Builder {
	in := Instr{Op: OpLDG, Dst: dst, Pred: RegNone, Mem: mem}
	if addr.Valid() {
		in.Srcs[0] = addr
		in.NSrc = 1
	}
	return b.emit(in)
}

// Stg emits STG [addr], val with the given global-memory descriptor.
func (b *Builder) Stg(val, addr Reg, mem MemDesc) *Builder {
	in := Instr{Op: OpSTG, Dst: RegNone, Srcs: [3]Reg{val}, NSrc: 1, Pred: RegNone, Mem: mem}
	if addr.Valid() {
		in.Srcs[1] = addr
		in.NSrc = 2
	}
	return b.emit(in)
}

// Lds emits LDS dst, [addr] (shared memory).
func (b *Builder) Lds(dst, addr Reg) *Builder {
	in := Instr{Op: OpLDS, Dst: dst, Pred: RegNone}
	if addr.Valid() {
		in.Srcs[0] = addr
		in.NSrc = 1
	}
	return b.emit(in)
}

// Sts emits STS [addr], val (shared memory).
func (b *Builder) Sts(val, addr Reg) *Builder {
	in := Instr{Op: OpSTS, Dst: RegNone, Srcs: [3]Reg{val}, NSrc: 1, Pred: RegNone}
	if addr.Valid() {
		in.Srcs[1] = addr
		in.NSrc = 2
	}
	return b.emit(in)
}

// Bra emits an unconditional branch to label.
func (b *Builder) Bra(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), label: label})
	return b.emit(Instr{Op: OpBRA, Dst: RegNone, Pred: RegNone})
}

// BraCond emits a conditional branch on pred to label. trip is the loop
// trip count the timing model uses when the target turns out to be
// backward; diverge marks a forward branch whose warp splits both ways.
func (b *Builder) BraCond(pred Reg, label string, trip int, diverge bool) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), label: label})
	return b.emit(Instr{Op: OpBRA, Dst: RegNone, Pred: pred, Trip: trip, Diverge: diverge})
}

// Loop emits a conditional backward branch on pred to label with the given
// trip count (sugar over BraCond for readability at call sites).
func (b *Builder) Loop(pred Reg, label string, trip int) *Builder {
	return b.BraCond(pred, label, trip, false)
}

// Bar emits a CTA barrier.
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBAR, Dst: RegNone, Pred: RegNone}) }

// Exit emits EXIT.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpEXIT, Dst: RegNone, Pred: RegNone}) }

// Build resolves labels and returns the validated program. The returned
// program's RegsPerThread is max(highest register referenced + 1, minRegs),
// letting generators reserve head-room the way real allocators round up.
func (b *Builder) Build(minRegs int) (*Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("undefined label %q at pc %d", f.label, f.pc))
			continue
		}
		b.instrs[f.pc].Target = pc
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	regs := int(b.maxReg) + 1
	if b.maxReg == RegNone {
		regs = 1
	}
	if minRegs > regs {
		regs = minRegs
	}
	p := &Program{Name: b.name, Instrs: b.instrs, RegsPerThread: regs}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; kernel generators are static
// program text, so a failure is a programming bug.
func (b *Builder) MustBuild(minRegs int) *Program {
	p, err := b.Build(minRegs)
	if err != nil {
		panic(fmt.Sprintf("isa: building %s: %v", b.name, err))
	}
	return p
}
