#!/bin/sh
# Full-scale audited sweep: the 16-SM, full-grid matrix that the -quick
# gate deliberately skips — every Table II benchmark under every policy
# with the runtime invariant auditor (internal/audit) checking each run.
#
# Collect-all mode (-audit-collect) is used so one bad invariant does not
# mask others: each failing run survives to the end of its simulation and
# reports every violation class it accumulated, then the sweep as a whole
# exits non-zero. CI runs this weekly (see .github/workflows/ci.yml);
# locally it takes tens of minutes on a laptop, so it is not part of
# scripts/check.sh.
#
#	scripts/full_audit.sh [jobs]
#
# Pass a worker count to override the default of GOMAXPROCS.
set -eu
cd "$(dirname "$0")/.."

JOBS="${1:-0}"
go run ./cmd/finereg-sim -sms 16 -bench all -policy all \
	-jobs "$JOBS" -audit-collect >/dev/null
echo "full audited sweep passed"
