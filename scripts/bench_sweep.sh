#!/bin/sh
# Measures the run engine's parallel and cached speedup on the quick sweep
# and records it in BENCH_sweep.json at the repo root. Pass a worker count
# to override the default of 4:
#
#	scripts/bench_sweep.sh [jobs]
#
# The harness (cmd/finereg-bench) also byte-compares the serial and
# parallel sweep tables, so this doubles as the determinism acceptance
# check on real hardware.
#
# A second pass records the single-thread cycle-loop throughput per policy
# (quick 4-SM and paper 16-SM scale) in BENCH_hotpath.json — the number
# the event-driven simulation core is measured by. The hotpath report also
# carries the sharded-core sweep (the paper-16sm finereg cell at shards
# 1/2/4/8; `shard_speedup` is the best count's gain over serial, only
# meaningful on multi-core hosts — when every sharded row loses,
# `best_shards` is honestly 1 and `shard_regression` is set). Each
# sharded row also records gate traffic from the par_* counters:
# `gate_syncs_per_cycle` (contended waits + frontier publishes per
# simulated cycle under batched publication + speculative L2 reads),
# `gate_syncs_per_cycle_pervisit` (the same run costed at the PR 8
# publish-per-visit, wait-per-touch protocol — the reduction factor is
# the ratio), and `spec_replay_rate` (speculative commits replayed over
# speculative reads). Finally the `progress` block: the quick-4sm
# finereg cell timed with in-run progress sampling off and on (no-op
# callback, default period), so the observability tax is re-measured on
# every sweep; on_over_off should stay within run-to-run noise of 1.0.
set -eu
cd "$(dirname "$0")/.."

JOBS="${1:-4}"
go run ./cmd/finereg-bench -jobs "$JOBS" -out BENCH_sweep.json
go run ./cmd/finereg-bench -hotpath -out BENCH_hotpath.json
