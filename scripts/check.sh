#!/bin/sh
# Full repo gate: gofmt, vet, build, race-enabled tests.
# Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
go vet ./...
go build ./...
# -short: see the race target in the Makefile.
go test -race -short -timeout 20m ./...
