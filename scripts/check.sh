#!/bin/sh
# Full repo gate: gofmt, vet, build, race-enabled tests.
# Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
go vet ./...
go build ./...
# -short: see the race target in the Makefile.
go test -race -short -timeout 20m ./...
# Run-engine gate: a parallel mini-sweep (4 workers + shared cache) under
# the race detector, end to end through the experiments layer.
go test -race -timeout 10m -run 'TestSweepParallelWithCache|TestSweepParallelDeterminism' ./internal/experiments/
# Auditor gate: an audited end-to-end smoke sweep — every policy on a
# compute-bound and a switch-heavy workload with the runtime invariant
# auditor enabled (internal/audit); any violation fails the run.
go run ./cmd/finereg-sim -sms 2 -bench CS,MC,LB -policy all -grid-scale 0.05 -audit >/dev/null
# Serving gate: the HTTP service end to end — admission, coalescing, SSE
# streaming, load shed, graceful drain, and the byte-identical comparison
# against a direct engine run — under the race detector. Kept as its own
# line (not folded into the -short pass above) so the service smoke can
# never be silently dropped by a test-tag or -short policy change.
go test -race -count=1 -timeout 10m ./internal/serve/...
# Fleet gate: the distributed coordinator/worker path end to end under
# the race detector — rendezvous routing, the remote cache tier,
# work-stealing, and the worker-kill requeue e2e (byte-identical against
# the single-node engine). -count=1 so the kill/requeue scenario really
# re-runs every time instead of being answered from the test cache.
go test -race -count=1 -timeout 10m ./internal/fleet/...
# Telemetry gate: the in-run progress path under the race detector — the
# sampler in gpu.Run, the per-run op scopes (concurrent jobs must not
# bleed into each other's samples), the engine's sink forwarding, and the
# SSE progress stream — plus the golden-matrix proof that sampling leaves
# every cell byte-identical (not -short, so it is skipped by the blanket
# race pass above and must run here).
go test -race -count=1 -timeout 10m -run 'Progress|Telemetry|Attribution' \
	./internal/gpu/ ./internal/telemetry/ ./internal/runner/ ./internal/serve/ ./internal/audit/diff/
# Ingestion gate: user-program workloads end to end under the race
# detector — loader determinism, structured admission errors, a program
# submitted over HTTP byte-identical to the in-process run, stream
# segments and MPS-partitioned runs through runner/serve/fleet, and the
# partition instruction-count-vs-solo acceptance check — then the worked
# example through the CLI (the same loader as the service path), audited,
# as both a solo program and a partitioned concurrent stream.
go test -race -count=1 -timeout 10m -run 'TestLoad|TestProgram|TestStreamJob|TestConcurrentJob' \
	./internal/workload/ ./internal/runner/ ./internal/serve/
go test -race -count=1 -timeout 10m -run 'TestFleetRunsProgramJobs' ./internal/fleet/
go test -race -count=1 -timeout 10m -run 'TestMPS|TestRunStream|TestRunConcurrent|TestValidatePartitions|TestPartitioned' \
	./internal/experiments/ ./internal/gpu/
go run ./cmd/finereg-sim -program examples/saxpy.sasm -sms 2 -policy baseline,finereg -audit >/dev/null
go run ./cmd/finereg-sim -stream examples/saxpy.sasm,bench:CS -partitions 1,1 -sms 2 -policy baseline -audit >/dev/null
# Sharded-core gate: the golden matrix byte-identity proof at shards
# 1 (TestGoldenCycleExactness), 2, and 4 (TestGoldenShardedExecution)
# under the race detector — the sharded cells run untraced, so batched
# frontier publication AND speculative L2 reads are both live in them —
# plus the gpu-level sharded identity, speculation-replay, traced-stream
# identity, panic containment, and fallback tests, and the sharded stall
# partition (per-SM trace buffers merged in canonical order). This is the
# determinism acceptance check for the low-sync parallel event core.
go test -race -count=1 -timeout 10m \
	-run 'TestGoldenCycleExactness|TestGoldenShardedExecution' ./internal/audit/diff/
go test -race -count=1 -timeout 10m -run 'TestSharded|TestEffectiveShards' ./internal/gpu/
go test -race -count=1 -timeout 10m -run 'TestStallPartitionInvariantSharded' ./internal/trace/
